module Metrics = Ndp_obs.Metrics

(* Each field is a registry-backed counter so one metrics dump can carry
   the aggregate stats next to the per-structure families. Counting must
   never depend on whether observability is enabled, so when the caller's
   registry is absent or disabled the counters are registered in a private
   always-enabled one. *)
type t = {
  l1_hits : Metrics.counter;
  l1_misses : Metrics.counter;
  l2_hits : Metrics.counter;
  l2_misses : Metrics.counter;
  mcdram_accesses : Metrics.counter;
  ddr_accesses : Metrics.counter;
  hops : Metrics.counter;
  messages : Metrics.counter;
  latency_sum : Metrics.counter;
  latency_max : Metrics.counter;
  ops : Metrics.counter;
  syncs : Metrics.counter;
  tasks : Metrics.counter;
  finish_time : Metrics.counter;
  load_wait : Metrics.counter;
  result_wait : Metrics.counter;
  invalidations : Metrics.counter;
  prefetches : Metrics.counter;
}

let create ?metrics () =
  let reg =
    match metrics with
    | Some r when Metrics.enabled r -> r
    | Some _ | None -> Metrics.create ()
  in
  let c name = Metrics.counter reg ("sim." ^ name) in
  {
    l1_hits = c "l1_hits";
    l1_misses = c "l1_misses";
    l2_hits = c "l2_hits";
    l2_misses = c "l2_misses";
    mcdram_accesses = c "mcdram_accesses";
    ddr_accesses = c "ddr_accesses";
    hops = c "hops";
    messages = c "messages";
    latency_sum = c "latency_sum";
    latency_max = c "latency_max";
    ops = c "ops";
    syncs = c "syncs";
    tasks = c "tasks";
    finish_time = c "finish_time";
    load_wait = c "load_wait";
    result_wait = c "result_wait";
    invalidations = c "invalidations";
    prefetches = c "prefetches";
  }

let l1_hits t = Metrics.counter_value t.l1_hits
let l1_misses t = Metrics.counter_value t.l1_misses
let l2_hits t = Metrics.counter_value t.l2_hits
let l2_misses t = Metrics.counter_value t.l2_misses
let mcdram_accesses t = Metrics.counter_value t.mcdram_accesses
let ddr_accesses t = Metrics.counter_value t.ddr_accesses
let hops t = Metrics.counter_value t.hops
let messages t = Metrics.counter_value t.messages
let latency_sum t = Metrics.counter_value t.latency_sum
let latency_max t = Metrics.counter_value t.latency_max
let ops t = Metrics.counter_value t.ops
let syncs t = Metrics.counter_value t.syncs
let tasks t = Metrics.counter_value t.tasks
let finish_time t = Metrics.counter_value t.finish_time
let load_wait t = Metrics.counter_value t.load_wait
let result_wait t = Metrics.counter_value t.result_wait
let invalidations t = Metrics.counter_value t.invalidations
let prefetches t = Metrics.counter_value t.prefetches

let to_alist t =
  [
    ("l1_hits", l1_hits t);
    ("l1_misses", l1_misses t);
    ("l2_hits", l2_hits t);
    ("l2_misses", l2_misses t);
    ("mcdram_accesses", mcdram_accesses t);
    ("ddr_accesses", ddr_accesses t);
    ("hops", hops t);
    ("messages", messages t);
    ("latency_sum", latency_sum t);
    ("latency_max", latency_max t);
    ("ops", ops t);
    ("syncs", syncs t);
    ("tasks", tasks t);
    ("finish_time", finish_time t);
    ("load_wait", load_wait t);
    ("result_wait", result_wait t);
    ("invalidations", invalidations t);
    ("prefetches", prefetches t);
  ]

let equal a b = to_alist a = to_alist b

let copy t =
  let s = create () in
  Metrics.add s.l1_hits (l1_hits t);
  Metrics.add s.l1_misses (l1_misses t);
  Metrics.add s.l2_hits (l2_hits t);
  Metrics.add s.l2_misses (l2_misses t);
  Metrics.add s.mcdram_accesses (mcdram_accesses t);
  Metrics.add s.ddr_accesses (ddr_accesses t);
  Metrics.add s.hops (hops t);
  Metrics.add s.messages (messages t);
  Metrics.add s.latency_sum (latency_sum t);
  Metrics.add s.latency_max (latency_max t);
  Metrics.add s.ops (ops t);
  Metrics.add s.syncs (syncs t);
  Metrics.add s.tasks (tasks t);
  Metrics.add s.finish_time (finish_time t);
  Metrics.add s.load_wait (load_wait t);
  Metrics.add s.result_wait (result_wait t);
  Metrics.add s.invalidations (invalidations t);
  Metrics.add s.prefetches (prefetches t);
  s

let incr_l1_hits t = Metrics.incr t.l1_hits
let incr_l1_misses t = Metrics.incr t.l1_misses
let incr_l2_hits t = Metrics.incr t.l2_hits
let incr_l2_misses t = Metrics.incr t.l2_misses
let incr_mcdram_accesses t = Metrics.incr t.mcdram_accesses
let incr_ddr_accesses t = Metrics.incr t.ddr_accesses
let add_hops t n = Metrics.add t.hops n
let incr_messages t = Metrics.incr t.messages

let raise_to c v =
  let cur = Metrics.counter_value c in
  if v > cur then Metrics.add c (v - cur)

let note_latency t l =
  Metrics.add t.latency_sum l;
  raise_to t.latency_max l

let add_ops t n = Metrics.add t.ops n
let add_syncs t n = Metrics.add t.syncs n
let incr_tasks t = Metrics.incr t.tasks
let note_finish t cycle = raise_to t.finish_time cycle
let add_load_wait t n = Metrics.add t.load_wait n
let add_result_wait t n = Metrics.add t.result_wait n
let incr_invalidations t = Metrics.incr t.invalidations
let incr_prefetches t = Metrics.incr t.prefetches

let rate hits misses =
  let total = hits + misses in
  if total = 0 then 0.0 else float_of_int hits /. float_of_int total

let l1_hit_rate t = rate (l1_hits t) (l1_misses t)

let l2_hit_rate t = rate (l2_hits t) (l2_misses t)

let avg_latency t =
  if messages t = 0 then 0.0 else float_of_int (latency_sum t) /. float_of_int (messages t)

let pp ppf t =
  (* An empty-message run has no meaningful average latency: print "-"
     rather than a division artifact. *)
  let avg = if messages t = 0 then "-" else Printf.sprintf "%.1f" (avg_latency t) in
  Format.fprintf ppf
    "@[<v>L1 %d/%d (%.1f%%)@ L2 %d/%d (%.1f%%)@ hops %d, msgs %d, avg lat %s, max lat %d@ \
     ops %d, syncs %d, tasks %d, finish %d@]"
    (l1_hits t)
    (l1_hits t + l1_misses t)
    (100.0 *. l1_hit_rate t)
    (l2_hits t)
    (l2_hits t + l2_misses t)
    (100.0 *. l2_hit_rate t)
    (hops t) (messages t) avg (latency_max t) (ops t) (syncs t) (tasks t) (finish_time t)
