module Table = Ndp_prelude.Table
module Pipeline = Ndp_core.Pipeline
module Config = Ndp_sim.Config

let name (k : Ndp_core.Kernel.t) = k.Ndp_core.Kernel.name

let exec (r : Pipeline.result) = r.Pipeline.exec_time

let imp def r = Common.improvement ~base:def ~opt:(exec r)

let partitioned ?(window = Pipeline.Fixed 4) ?(reuse_aware = true) ?(sync_minimize = true)
    ?(level_based = true) ?balance_threshold () =
  Pipeline.Partitioned
    {
      Pipeline.partitioned_defaults with
      Pipeline.window;
      reuse_aware;
      sync_minimize;
      level_based;
      balance_threshold;
    }

(* Like the figures, each ablation computes per-app cells across the
   common pool and renders rows serially in suite order. *)

let reuse common =
  print_endline "== Ablation: reuse-aware vs reuse-agnostic windows (fixed w=4) ==";
  let t = Table.create ~header:[ "app"; "reuse-aware"; "reuse-agnostic" ] in
  let rows =
    Common.map_apps common (fun k ->
        let def = exec (Common.default_of common k) in
        let aware = Common.run common (partitioned ()) k in
        let agnostic = Common.run common (partitioned ~reuse_aware:false ()) k in
        [ name k; Table.cell_pct (imp def aware); Table.cell_pct (imp def agnostic) ])
  in
  List.iter (Table.add_row t) rows;
  Table.print t

let levels common =
  print_endline "== Ablation: level-based splitting vs flat splitting ==";
  let t = Table.create ~header:[ "app"; "level-based"; "flat" ] in
  let rows =
    Common.map_apps common (fun k ->
        let def = exec (Common.default_of common k) in
        let leveled = Common.ours_of common k in
        let flat =
          Common.run common (partitioned ~window:Pipeline.Adaptive ~level_based:false ()) k
        in
        [ name k; Table.cell_pct (imp def leveled); Table.cell_pct (imp def flat) ])
  in
  List.iter (Table.add_row t) rows;
  Table.print t

let sync_minimization common =
  print_endline "== Ablation: transitive-closure sync minimization ==";
  let t = Table.create ~header:[ "app"; "on:syncs/stmt"; "off:syncs/stmt"; "on:impr"; "off:impr" ] in
  let rows =
    Common.map_apps common (fun k ->
        let def = exec (Common.default_of common k) in
        let on = Common.ours_of common k in
        let off =
          Common.run common (partitioned ~window:Pipeline.Adaptive ~sync_minimize:false ()) k
        in
        let per r =
          float_of_int r.Pipeline.sync_arcs /. float_of_int (max 1 r.Pipeline.num_instances)
        in
        [
          name k;
          Table.cell_f (per on);
          Table.cell_f (per off);
          Table.cell_pct (imp def on);
          Table.cell_pct (imp def off);
        ])
  in
  List.iter (Table.add_row t) rows;
  Table.print t

let balance common =
  print_endline "== Ablation: load-balance threshold sweep ==";
  let thresholds = [ 0.0; 0.05; 0.10; 0.30; 1.00 ] in
  let header = "app" :: List.map (fun b -> Printf.sprintf "b=%.2f" b) thresholds in
  let t = Table.create ~header in
  let rows =
    Common.map_apps common (fun k ->
        let def = exec (Common.default_of common k) in
        let cells =
          List.map
            (fun b ->
              let r =
                Common.run common
                  (partitioned ~window:Pipeline.Adaptive ~balance_threshold:b ())
                  k
              in
              Table.cell_pct (imp def r))
            thresholds
        in
        name k :: cells)
  in
  List.iter (Table.add_row t) rows;
  Table.print t

let coloring common =
  print_endline "== Ablation: page-coloring OS support vs scrambled allocator ==";
  let t = Table.create ~header:[ "app"; "coloring"; "scrambled" ] in
  let scrambled_config =
    { Config.default with Config.page_policy = Ndp_mem.Page_alloc.Scrambled }
  in
  let rows =
    Common.map_apps common (fun k ->
        let def = exec (Common.default_of common k) in
        let colored = imp def (Common.ours_of common k) in
        let def_scr = exec (Common.run common ~config:scrambled_config Pipeline.Default k) in
        let ours_scr =
          Common.run common ~config:scrambled_config
            (Pipeline.Partitioned Pipeline.partitioned_defaults) k
        in
        let scrambled = Common.improvement ~base:def_scr ~opt:(exec ours_scr) in
        [ name k; Table.cell_pct colored; Table.cell_pct scrambled ])
  in
  List.iter (Table.add_row t) rows;
  Table.print t

let all common =
  reuse common;
  levels common;
  sync_minimization common;
  balance common;
  coloring common
