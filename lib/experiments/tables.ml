module Table = Ndp_prelude.Table
module Task = Ndp_sim.Task

(* Each table computes its per-app cells across the common pool, then
   renders the rows serially in suite order — output is byte-identical
   to the serial driver. *)

let table1 common =
  print_endline "== Table 1: fraction of compile-time analyzable data references ==";
  let t = Table.create ~header:[ "app"; "analyzable" ] in
  let rows =
    Common.map_apps common (fun k ->
        let r = Common.ours_of common k in
        [ k.Ndp_core.Kernel.name; Table.cell_pct (100.0 *. r.Ndp_core.Pipeline.analyzable_fraction) ])
  in
  List.iter (Table.add_row t) rows;
  Table.print t

let table2 common =
  print_endline "== Table 2: cache hit/miss predictor accuracy ==";
  let t = Table.create ~header:[ "app"; "accuracy" ] in
  let rows =
    Common.map_apps common (fun k ->
        let r = Common.ours_of common k in
        [ k.Ndp_core.Kernel.name; Table.cell_pct (100.0 *. r.Ndp_core.Pipeline.predictor_accuracy) ])
  in
  List.iter (Table.add_row t) rows;
  Table.print t

let table3 common =
  print_endline "== Table 3: op mix of re-mapped (offloaded) computations ==";
  let t = Table.create ~header:[ "app"; "add/sub"; "mul/div"; "others" ] in
  let rows =
    Common.map_apps common (fun k ->
        let r = Common.ours_of common k in
        let mix = r.Ndp_core.Pipeline.offload_mix in
        let total = float_of_int (max 1 (Task.mix_total mix)) in
        let pct part = Table.cell_pct (100.0 *. float_of_int part /. total) in
        [
          k.Ndp_core.Kernel.name;
          pct mix.Task.add_sub;
          pct mix.Task.mul_div;
          pct mix.Task.other;
        ])
  in
  List.iter (Table.add_row t) rows;
  Table.print t
