(* Byte-identity digests over everything a pipeline run observably
   produces: stats, schedules (the full task stream), ledger totals.
   The digest table frozen in test/test_equiv.ml is the correctness
   oracle for simulator-internals rewrites: any change to a counter, a
   task field or an emission order shows up as a digest mismatch. *)

module P = Ndp_core.Pipeline

type mode = Plain | Faulted | Profiled

let mode_name = function
  | Plain -> "plain"
  | Faulted -> "faulted"
  | Profiled -> "profiled"

let modes = [ Plain; Faulted; Profiled ]

let schemes = [ P.Default; P.Partitioned P.partitioned_defaults ]

let fault_spec = "kill=2,slow=1x4.0,stall=9@0+20000,mc=0x2.5"

let fault_seed = 7

(* FNV-1a folded into OCaml's 63-bit int (offset basis truncated to fit);
   deterministic across runs and platforms with 64-bit ints. *)
let fnv_offset = 0x4bf29ce484222325
let fnv_prime = 0x100000001b3

let hash_string h s =
  let h = ref h in
  String.iter (fun c -> h := (!h lxor Char.code c) * fnv_prime) s;
  !h

let buf_int b i = Buffer.add_string b (string_of_int i); Buffer.add_char b ';'

let buf_task b (t : Ndp_sim.Task.t) =
  buf_int b t.id;
  buf_int b t.group;
  buf_int b t.node;
  buf_int b t.cost;
  buf_int b t.mix.add_sub;
  buf_int b t.mix.mul_div;
  buf_int b t.mix.other;
  List.iter
    (function
      | Ndp_sim.Task.Load { va; bytes } ->
        Buffer.add_char b 'L'; buf_int b va; buf_int b bytes
      | Ndp_sim.Task.Result { producer; bytes } ->
        Buffer.add_char b 'R'; buf_int b producer; buf_int b bytes)
    t.operands;
  (match t.store with
  | None -> Buffer.add_char b '-'
  | Some (va, bytes) -> Buffer.add_char b 'S'; buf_int b va; buf_int b bytes);
  buf_int b t.syncs;
  Buffer.add_string b t.label;
  Buffer.add_char b '\n'

let buf_trace b = function
  | P.Serialized { t_nest; t_tasks; _ } ->
    Buffer.add_string b t_nest;
    Buffer.add_char b ':';
    List.iter (buf_task b) t_tasks
  | P.Windowed { t_nest; t_compiled; _ } ->
    Buffer.add_string b t_nest;
    Buffer.add_char b ':';
    List.iter
      (fun (t, level) -> buf_int b level; buf_task b t)
      t_compiled.Ndp_core.Window.tasks;
    List.iter (fun (a, c) -> buf_int b a; buf_int b c)
      t_compiled.Ndp_core.Window.sync_arcs

let digest_result ?obs (r : P.result) =
  let b = Buffer.create 65536 in
  List.iter (fun (k, v) -> Buffer.add_string b k; buf_int b v)
    (Ndp_sim.Stats.to_alist r.P.stats);
  buf_int b r.P.exec_time;
  buf_int b r.P.sync_arcs;
  buf_int b r.P.tasks_emitted;
  buf_int b r.P.remapped_tasks;
  Array.iter (buf_int b) r.P.group_hops;
  Array.iter (buf_int b) r.P.group_syncs;
  Array.iter (buf_int b) r.P.node_finish;
  Array.iter (buf_int b) r.P.node_busy;
  List.iter (fun (n, w) -> Buffer.add_string b n; buf_int b w)
    r.P.windows_chosen;
  buf_int b r.P.est_movement_total;
  List.iter (buf_trace b) r.P.traces;
  (match obs with
  | Some (sink : Ndp_obs.Sink.t) when Ndp_obs.Ledger.enabled sink.ledger ->
    let l = sink.Ndp_obs.Sink.ledger in
    buf_int b (Ndp_obs.Ledger.total_messages l);
    buf_int b (Ndp_obs.Ledger.total_flits l);
    buf_int b (Ndp_obs.Ledger.total_flit_hops l);
    buf_int b (Ndp_obs.Ledger.total_predicted l)
  | _ -> ());
  Printf.sprintf "%015x" (hash_string fnv_offset (Buffer.contents b) land max_int)

let run ?config ~mode ~scheme kernel =
  let config = Option.value config ~default:Ndp_sim.Config.default in
  match mode with
  | Plain ->
    let r = P.run ~config ~validate:true scheme kernel in
    digest_result r
  | Faulted ->
    let mesh = Ndp_sim.Config.mesh config in
    let plan =
      match Ndp_fault.Plan.parse ~mesh ~seed:fault_seed fault_spec with
      | Ok p -> p
      | Error e -> failwith ("Equiv.run: bad fault spec: " ^ e)
    in
    let r = P.run ~config ~validate:true ~faults:plan ~repair:true scheme kernel in
    digest_result r
  | Profiled ->
    let obs =
      Ndp_obs.Sink.create ~metrics:true ~trace:false ~ledger:true ()
    in
    let r = P.run ~config ~validate:true ~obs scheme kernel in
    digest_result ~obs r

let all_combos () =
  List.concat_map
    (fun name ->
      List.concat_map
        (fun scheme ->
          List.map (fun mode -> (name, scheme, mode)) modes)
        schemes)
    Ndp_workloads.Suite.names

let combo_key name scheme mode =
  Printf.sprintf "%s/%s/%s" name (P.scheme_name scheme) (mode_name mode)
