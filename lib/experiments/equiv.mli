(** Byte-identity digests of pipeline runs.

    [run] executes one (kernel, scheme, mode) combination and folds every
    observable output — [Stats.to_alist], the full emitted task stream
    (via [~validate:true] traces), per-group/per-node arrays, window
    choices and, for {!Profiled}, the movement-ledger totals — into a
    single FNV-1a digest string. The table of seed digests frozen in
    [test/test_equiv.ml] makes "the rewrite changed nothing observable"
    a one-line assertion per combination. *)

type mode = Plain | Faulted | Profiled

val mode_name : mode -> string

val modes : mode list

val schemes : Ndp_core.Pipeline.scheme list
(** [Default] and the full partitioned scheme, in that order. *)

val fault_spec : string
(** The fault mini-language spec used by {!Faulted} runs. *)

val fault_seed : int

val run :
  ?config:Ndp_sim.Config.t ->
  mode:mode ->
  scheme:Ndp_core.Pipeline.scheme ->
  Ndp_core.Kernel.t ->
  string
(** Digest of one run at the default (or given) config. *)

val all_combos : unit -> (string * Ndp_core.Pipeline.scheme * mode) list
(** Workload-major list of the 12 x 2 x 3 combinations. *)

val combo_key : string -> Ndp_core.Pipeline.scheme -> mode -> string
(** ["<workload>/<scheme>/<mode>"] — the key used in the digest table. *)
