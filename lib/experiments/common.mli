(** Shared run cache and parallel cell executor for the experiment
    drivers: the same (app, scheme, config, tweaks) simulation backs
    several figures, so results are memoized per process, and each driver
    fans its per-app cells across a domain pool. The cache is
    mutex-protected (compute happens outside the lock, first writer
    wins), so cells may call {!run} concurrently. *)

type t

val create : ?jobs:int -> unit -> t
(** [jobs] sizes the embedded domain pool;
    defaults to {!Ndp_prelude.Pool.default_jobs}. *)

val pool : t -> Ndp_prelude.Pool.t
(** The embedded pool, for drivers that parallelize non-app work. *)

val apps : t -> Ndp_core.Kernel.t list
(** The twelve-application suite, constructed once. *)

val run :
  t ->
  ?config:Ndp_sim.Config.t ->
  ?tweaks:Ndp_core.Pipeline.tweaks ->
  ?key_suffix:string ->
  Ndp_core.Pipeline.scheme ->
  Ndp_core.Kernel.t ->
  Ndp_core.Pipeline.result
(** Memoized {!Ndp_core.Pipeline.run}. [key_suffix] must distinguish calls
    whose config/tweaks differ in ways the automatic key cannot see.
    Safe to call from pool workers. *)

val parallel_map : t -> ('a -> 'b) -> 'a list -> 'b list
(** Ordered map over the embedded pool; see
    {!Ndp_prelude.Pool.parallel_map}. *)

val map_apps : t -> (Ndp_core.Kernel.t -> 'a) -> 'a list
(** Evaluate one cell per suite application across the pool, results in
    suite order. The experiment drivers compute row data here and then
    render rows serially, so tables are byte-identical to a serial run. *)

val default_of : t -> Ndp_core.Kernel.t -> Ndp_core.Pipeline.result
(** The baseline run under the default config. *)

val ours_of : t -> Ndp_core.Kernel.t -> Ndp_core.Pipeline.result
(** The full partitioned scheme under the default config. *)

val improvement : base:int -> opt:int -> float
(** Percent reduction. *)

val geomean_improvement : (float * 'a) list -> float
