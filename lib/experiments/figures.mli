(** Figures 13-24 of the paper, regenerated on the simulated manycore.

    Each driver prints the same per-application series the paper plots,
    plus the geometric-mean summary quoted in the text. *)

val fig13 : Common.t -> unit
(** Average/maximum per-statement data-movement reduction. *)

val fig14 : Common.t -> unit
(** Average/maximum degree of subcomputation parallelism per statement. *)

val fig15 : Common.t -> unit
(** Synchronizations per statement after minimization. *)

val fig16 : Common.t -> unit
(** L1 hit-rate improvement over the default placement. *)

val fig17 : Common.t -> unit
(** Execution-time reduction: our scheme, ideal network, ideal data
    analysis. *)

val fig18 : Common.t -> unit
(** Isolated contribution of each metric (S1 L1, S2 movement,
    S3 parallelism, S4 syncs), normalized to default execution. *)

val fig19 : Common.t -> unit
(** Average/maximum on-chip network latency reduction. *)

val link_heatmap : ?app:string -> Common.t -> unit
(** Per-node outgoing flit totals on the mesh (from the
    [noc.link_flits{..}] metric family), default vs partitioned — the
    table form of the paper's traffic heatmaps. *)

val attribution : Common.t -> unit
(** Predicted (compile-time MST / window estimate) vs. measured (ledger)
    data movement per application, default and partitioned — plus the
    measured/predicted ratio, the honesty check on the cost model. Runs a
    ledger-enabled pipeline per (app, scheme) outside the memo cache. *)

val degradation : ?app:string -> Common.t -> unit
(** Slowdown versus number of killed links (seed-chosen, 0-8), for the
    default placement, the partitioned scheme and the partitioned scheme
    with schedule repair — each normalized to its own fault-free run. The
    graceful-degradation curve; bypasses the experiment memo cache. *)

val fig20 : Common.t -> unit
(** Execution-time improvement under fixed window sizes 1-8 and the
    adaptive per-nest choice. *)

val fig21 : Common.t -> unit
(** L1 hit rates under the same window sweep. *)

val fig22 : Common.t -> unit
(** Cluster mode x memory mode x {original, optimized} grid, normalized
    to (quadrant, flat, original). *)

val fig23 : Common.t -> unit
(** Our computation mapping vs profile-based data-to-MC mapping vs the
    combined scheme. *)

val fig24 : Common.t -> unit
(** Energy savings: our scheme and the two ideal scenarios. *)

val summary : Common.t -> unit
(** One table with the headline per-application improvements (execution
    time, data movement, L1 hit rate, energy) — the numbers the paper's
    abstract quotes. *)

val all : Common.t -> unit
