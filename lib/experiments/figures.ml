module Table = Ndp_prelude.Table
module Stats = Ndp_prelude.Stats
module Pipeline = Ndp_core.Pipeline
module Config = Ndp_sim.Config
module SimStats = Ndp_sim.Stats

let name (k : Ndp_core.Kernel.t) = k.Ndp_core.Kernel.name

let pct = Table.cell_pct

let exec (r : Pipeline.result) = r.Pipeline.exec_time

let improvement base opt = Common.improvement ~base ~opt

(* Every figure computes its per-app cells across the common pool
   ({!Common.map_apps}), then renders rows serially in suite order.
   Accumulator lists are rebuilt in the exact order the serial loops
   produced them (including reversals) so geomean folds see the same
   float sequence and the output stays byte-identical. *)

(* Data-movement reduction between two runs of the same kernel (identical
   statement-instance numbering). The average is movement-weighted (total
   flit-hops saved over total default flit-hops): an unweighted mean over
   statements lets instances that moved almost nothing in the default
   dominate with meaningless percentages. The max is taken over statement
   instances whose default execution moved at least one cache line. *)
let movement_reduction (def : Pipeline.result) (opt : Pipeline.result) =
  let line_flits = 4 in
  let total_def = Array.fold_left ( + ) 0 def.Pipeline.group_hops in
  let total_opt = Array.fold_left ( + ) 0 opt.Pipeline.group_hops in
  let avg = Common.improvement ~base:total_def ~opt:total_opt in
  let mx = ref 0.0 in
  Array.iteri
    (fun g dh ->
      if dh >= line_flits then begin
        let r = 100.0 *. float_of_int (dh - opt.Pipeline.group_hops.(g)) /. float_of_int dh in
        if r > !mx then mx := r
      end)
    def.Pipeline.group_hops;
  (avg, !mx)

let fig13 common =
  print_endline "== Figure 13: data movement reduction over default placement ==";
  let t = Table.create ~header:[ "app"; "avg"; "max" ] in
  let cells =
    Common.map_apps common (fun k ->
        let def = Common.default_of common k and opt = Common.ours_of common k in
        let avg, mx = movement_reduction def opt in
        ((avg, k), [ name k; pct avg; pct mx ]))
  in
  List.iter (fun (_, row) -> Table.add_row t row) cells;
  let rows = List.map fst cells in
  Table.add_row t [ "geomean(avg)"; pct (Common.geomean_improvement rows) ];
  Table.print t

let fig14 common =
  print_endline "== Figure 14: degree of subcomputation parallelism per statement ==";
  let t = Table.create ~header:[ "app"; "avg"; "max" ] in
  let cells =
    Common.map_apps common (fun k ->
        let r = Common.ours_of common k in
        let par = Array.to_list r.Pipeline.parallelism in
        let avg = Stats.mean par in
        let mx = if par = [] then 0.0 else snd (Stats.min_max par) in
        (avg, [ name k; Table.cell_f avg; Table.cell_f mx ]))
  in
  List.iter (fun (_, row) -> Table.add_row t row) cells;
  let avgs = List.map fst cells in
  Table.add_row t [ "mean(avg)"; Table.cell_f (Stats.mean avgs) ];
  Table.print t

let fig15 common =
  print_endline "== Figure 15: synchronizations per statement ==";
  let t = Table.create ~header:[ "app"; "avg"; "max" ] in
  let rows =
    Common.map_apps common (fun k ->
        let r = Common.ours_of common k in
        let syncs = Array.to_list (Array.map float_of_int r.Pipeline.group_syncs) in
        let avg = Stats.mean syncs in
        let mx = if syncs = [] then 0.0 else snd (Stats.min_max syncs) in
        [ name k; Table.cell_f avg; Table.cell_f mx ])
  in
  List.iter (Table.add_row t) rows;
  Table.print t

let fig16 common =
  print_endline "== Figure 16: L1 hit rate improvement (percentage points) ==";
  let t = Table.create ~header:[ "app"; "default"; "ours"; "improvement" ] in
  let cells =
    Common.map_apps common (fun k ->
        let def = Common.default_of common k and opt = Common.ours_of common k in
        let hd = 100.0 *. SimStats.l1_hit_rate def.Pipeline.stats in
        let ho = 100.0 *. SimStats.l1_hit_rate opt.Pipeline.stats in
        (ho -. hd, [ name k; pct hd; pct ho; pct (ho -. hd) ]))
  in
  List.iter (fun (_, row) -> Table.add_row t row) cells;
  let gains = List.map fst cells in
  Table.add_row t [ "mean"; ""; ""; pct (Stats.mean gains) ];
  Table.print t

let ideal_network common k =
  Common.run common
    ~tweaks:{ Pipeline.no_tweaks with Pipeline.distance_factor = 0.0 }
    (Pipeline.Partitioned Pipeline.partitioned_defaults)
    k

let ideal_data common k =
  Common.run common
    (Pipeline.Partitioned { Pipeline.partitioned_defaults with Pipeline.ideal_data = true })
    k

let fig17 common =
  print_endline "== Figure 17: execution time reduction ==";
  let t = Table.create ~header:[ "app"; "ours"; "ideal-network"; "ideal-data" ] in
  let cells =
    Common.map_apps common (fun k ->
        let def = exec (Common.default_of common k) in
        let ours = improvement def (exec (Common.ours_of common k)) in
        let inet = improvement def (exec (ideal_network common k)) in
        let idata = improvement def (exec (ideal_data common k)) in
        (ours, inet, idata, k, [ name k; pct ours; pct inet; pct idata ]))
  in
  List.iter (fun (_, _, _, _, row) -> Table.add_row t row) cells;
  let a, b, c =
    List.fold_left
      (fun (a, b, c) (ours, inet, idata, k, _) ->
        ((ours, k) :: a, (inet, k) :: b, (idata, k) :: c))
      ([], [], []) cells
  in
  Table.add_row t
    [
      "geomean";
      pct (Common.geomean_improvement a);
      pct (Common.geomean_improvement b);
      pct (Common.geomean_improvement c);
    ];
  Table.print t

let fig18 common =
  print_endline "== Figure 18: contribution of each metric (normalized speedup over default) ==";
  let t = Table.create ~header:[ "app"; "S1:l1"; "S2:movement"; "S3:parallel"; "S4:syncs"; "ours" ] in
  let rows =
    Common.map_apps common (fun k ->
        let def = Common.default_of common k and opt = Common.ours_of common k in
        let tdef = float_of_int (exec def) in
        let speedup r = tdef /. float_of_int (exec r) in
        let hd = SimStats.l1_hit_rate def.Pipeline.stats in
        let ho = SimStats.l1_hit_rate opt.Pipeline.stats in
        let boost = if ho > hd && hd < 1.0 then (ho -. hd) /. (1.0 -. hd) else 0.0 in
        let s1 =
          Common.run common ~tweaks:{ Pipeline.no_tweaks with Pipeline.l1_boost = boost }
            Pipeline.Default k
        in
        let factor =
          let dh = (SimStats.hops def.Pipeline.stats) and oh = (SimStats.hops opt.Pipeline.stats) in
          if dh = 0 then 1.0 else min 1.0 (float_of_int oh /. float_of_int dh)
        in
        let s2 =
          Common.run common ~tweaks:{ Pipeline.no_tweaks with Pipeline.distance_factor = factor }
            Pipeline.Default k
        in
        let par = max 1.0 (Stats.mean (Array.to_list opt.Pipeline.parallelism)) in
        let s3 =
          Common.run common ~tweaks:{ Pipeline.no_tweaks with Pipeline.cost_scale = par }
            Pipeline.Default k
        in
        let extra =
          int_of_float
            (Float.round
               (float_of_int opt.Pipeline.sync_arcs
               /. float_of_int (max 1 opt.Pipeline.num_instances)))
        in
        let s4 =
          Common.run common ~tweaks:{ Pipeline.no_tweaks with Pipeline.extra_syncs = extra }
            Pipeline.Default k
        in
        [
          name k;
          Table.cell_f (speedup s1);
          Table.cell_f (speedup s2);
          Table.cell_f (speedup s3);
          Table.cell_f (speedup s4);
          Table.cell_f (speedup opt);
        ])
  in
  List.iter (Table.add_row t) rows;
  Table.print t

let fig19 common =
  print_endline "== Figure 19: on-chip network latency reduction ==";
  (* The maximum is taken over per-statement average latencies — the
     congestion measure; the single worst message is a cold-phase fill
     burst common to both schemes. *)
  let t = Table.create ~header:[ "app"; "avg-latency"; "max-latency" ] in
  let rows =
    Common.map_apps common (fun k ->
        let def = Common.default_of common k and opt = Common.ours_of common k in
        let avg_red =
          Stats.improvement_pct
            (SimStats.avg_latency def.Pipeline.stats)
            (SimStats.avg_latency opt.Pipeline.stats)
        in
        let worst r = Array.fold_left max 0.0 r.Pipeline.group_avg_latency in
        let max_red = Stats.improvement_pct (worst def) (worst opt) in
        [ name k; pct avg_red; pct max_red ])
  in
  List.iter (Table.add_row t) rows;
  Table.print t

(* Per-link traffic heatmap from the metrics registry: one obs-enabled run
   per scheme (outside the memo cache, which never threads a sink), then
   the mesh rendered as a grid of total flits leaving each node. The same
   [noc.link_flits{x,y->x,y}] family backs `ndp_run stats`. *)
let link_heatmap ?(app = "ocean") common =
  Printf.printf "== Link heatmap: per-node outgoing flits (%s) ==\n" app;
  let k = List.find (fun k -> name k = app) (Common.apps common) in
  let config = Ndp_sim.Config.default in
  let mesh = Config.mesh config in
  let cols = Ndp_noc.Mesh.cols mesh and rows = Ndp_noc.Mesh.rows mesh in
  let grid_of scheme =
    let obs = Ndp_obs.Sink.create ~metrics:true ~trace:false () in
    ignore (Pipeline.run ~config ~obs scheme k);
    let grid = Array.make_matrix rows cols 0 in
    let max_link = ref 0 in
    List.iter
      (fun (nm, sample) ->
        match sample with
        | Ndp_obs.Metrics.Counter_v flits
          when String.length nm > 15 && String.sub nm 0 15 = "noc.link_flits{" ->
          Scanf.sscanf
            (String.sub nm 15 (String.length nm - 16))
            "%d,%d->%d,%d"
            (fun sx sy _dx _dy ->
              grid.(sy).(sx) <- grid.(sy).(sx) + flits;
              if flits > !max_link then max_link := flits)
        | _ -> ())
      (Ndp_obs.Metrics.to_alist obs.Ndp_obs.Sink.metrics);
    (grid, !max_link)
  in
  let render label (grid, max_link) =
    Printf.printf "-- %s (hottest link: %d flits) --\n" label max_link;
    let t = Table.create ~header:("y\\x" :: List.init cols string_of_int) in
    for y = 0 to rows - 1 do
      Table.add_row t (string_of_int y :: List.map string_of_int (Array.to_list grid.(y)))
    done;
    Table.print t
  in
  render "default placement" (grid_of Pipeline.Default);
  render "partitioned"
    (grid_of (Pipeline.Partitioned { Pipeline.partitioned_defaults with Pipeline.window = Pipeline.Adaptive }))

(* Predicted vs. measured data movement from the attribution ledger: one
   ledger-enabled run per (app, scheme) outside the memo cache (which never
   threads a sink). "pred" is the compile-time estimate the partitioner
   minimized (Kruskal MST / window movement, in flit-hops); "meas" is what
   the simulated NoC actually carried (ledger total, reconciled against
   noc.link_flits by construction). The ratio column is the honesty check
   on the cost model: how much real traffic — request headers, fills,
   prefetches, invalidations, forwarded results — rides on top of each
   predicted flit-hop. *)
let attribution common =
  print_endline "== Attribution: predicted vs measured movement (flit-hops) ==";
  let config = Ndp_sim.Config.default in
  let measure scheme k =
    let obs = Ndp_obs.Sink.create ~metrics:false ~trace:false ~ledger:true () in
    ignore (Pipeline.run ~config ~obs scheme k);
    let ledger = obs.Ndp_obs.Sink.ledger in
    (Ndp_obs.Ledger.total_predicted ledger, Ndp_obs.Ledger.total_flit_hops ledger)
  in
  let ratio pred meas =
    if pred = 0 then "-" else Printf.sprintf "x%.2f" (float_of_int meas /. float_of_int pred)
  in
  let part =
    Pipeline.Partitioned { Pipeline.partitioned_defaults with Pipeline.window = Pipeline.Adaptive }
  in
  let t =
    Table.create
      ~header:
        [ "app"; "def:pred"; "def:meas"; "def:x"; "part:pred"; "part:meas"; "part:x" ]
  in
  List.iter
    (fun k ->
      let dp, dm = measure Pipeline.Default k in
      let pp, pm = measure part k in
      Table.add_row t
        [
          name k;
          string_of_int dp; string_of_int dm; ratio dp dm;
          string_of_int pp; string_of_int pm; ratio pp pm;
        ])
    (Common.apps common);
  Table.print t

let fixed_window common k w =
  Common.run common
    (Pipeline.Partitioned { Pipeline.partitioned_defaults with Pipeline.window = Pipeline.Fixed w })
    k

let fig20 common =
  print_endline "== Figure 20: execution time improvement vs (fixed) window size ==";
  let header = "app" :: List.init 8 (fun i -> Printf.sprintf "w=%d" (i + 1)) @ [ "adaptive" ] in
  let t = Table.create ~header in
  let rows =
    Common.map_apps common (fun k ->
        let def = exec (Common.default_of common k) in
        let fixed =
          List.init 8 (fun i -> pct (improvement def (exec (fixed_window common k (i + 1)))))
        in
        let adaptive = pct (improvement def (exec (Common.ours_of common k))) in
        (name k :: fixed) @ [ adaptive ])
  in
  List.iter (Table.add_row t) rows;
  Table.print t

let fig21 common =
  print_endline "== Figure 21: L1 hit rates vs (fixed) window size ==";
  let header = "app" :: List.init 8 (fun i -> Printf.sprintf "w=%d" (i + 1)) @ [ "adaptive" ] in
  let t = Table.create ~header in
  let rows =
    Common.map_apps common (fun k ->
        let rate r = pct (100.0 *. SimStats.l1_hit_rate r.Pipeline.stats) in
        let fixed = List.init 8 (fun i -> rate (fixed_window common k (i + 1))) in
        (name k :: fixed) @ [ rate (Common.ours_of common k) ])
  in
  List.iter (Table.add_row t) rows;
  Table.print t

let fig22 common =
  print_endline
    "== Figure 22: cluster/memory mode grid (speedup over quadrant+flat original) ==";
  print_endline "   columns: X=flat Y=cache Z=hybrid; 1=original 2=optimized";
  let t =
    Table.create
      ~header:[ "app"; "cluster"; "X,1"; "X,2"; "Y,1"; "Y,2"; "Z,1"; "Z,2" ]
  in
  let row_groups =
    Common.map_apps common (fun k ->
        let base = exec (Common.default_of common k) in
        let cell cluster mem scheme =
          let config = Config.with_modes Config.default cluster mem in
          let r =
            match scheme with
            | `Orig -> Common.run common ~config Pipeline.Default k
            | `Opt ->
              Common.run common ~config (Pipeline.Partitioned Pipeline.partitioned_defaults) k
          in
          Table.cell_f (float_of_int base /. float_of_int (exec r))
        in
        List.map
          (fun cluster ->
            [
              name k;
              Ndp_noc.Cluster.letter cluster;
              cell cluster Config.Flat `Orig;
              cell cluster Config.Flat `Opt;
              cell cluster Config.Cache_mode `Orig;
              cell cluster Config.Cache_mode `Opt;
              cell cluster Config.Hybrid `Orig;
              cell cluster Config.Hybrid `Opt;
            ])
          Ndp_noc.Cluster.all)
  in
  List.iter (List.iter (Table.add_row t)) row_groups;
  Table.print t

let fig23 common =
  print_endline "== Figure 23: computation mapping vs profile-based data-to-MC mapping ==";
  let t = Table.create ~header:[ "app"; "ours"; "data-mapping"; "combined" ] in
  let cells =
    Common.map_apps common (fun k ->
        let def = exec (Common.default_of common k) in
        let overrides =
          let accesses = Pipeline.profile_page_accesses k in
          let machine = Ndp_sim.Machine.create Config.default in
          let ctx =
            Ndp_core.Context.create ~machine
              ~compiler_resolve:(fun _ _ -> None)
              ~runtime_resolve:(fun _ _ -> None)
              ~arrays:k.Ndp_core.Kernel.program.Ndp_ir.Loop.arrays
              ~options:(Ndp_core.Context.default_options Config.default) ()
          in
          Ndp_core.Data_mapping.profile ctx ~accesses
        in
        let tweaks = { Pipeline.no_tweaks with Pipeline.mc_overrides = overrides } in
        let ours = improvement def (exec (Common.ours_of common k)) in
        let dmap = improvement def (exec (Common.run common ~tweaks Pipeline.Default k)) in
        let comb =
          improvement def
            (exec
               (Common.run common ~tweaks (Pipeline.Partitioned Pipeline.partitioned_defaults) k))
        in
        (ours, dmap, comb, k, [ name k; pct ours; pct dmap; pct comb ]))
  in
  List.iter (fun (_, _, _, _, row) -> Table.add_row t row) cells;
  let a, b, c =
    List.fold_left
      (fun (a, b, c) (ours, dmap, comb, k, _) ->
        ((ours, k) :: a, (dmap, k) :: b, (comb, k) :: c))
      ([], [], []) cells
  in
  Table.add_row t
    [
      "geomean";
      pct (Common.geomean_improvement a);
      pct (Common.geomean_improvement b);
      pct (Common.geomean_improvement c);
    ];
  Table.print t

let fig24 common =
  print_endline "== Figure 24: energy savings over default placement ==";
  let t = Table.create ~header:[ "app"; "ours"; "ideal-network"; "ideal-data" ] in
  let cells =
    Common.map_apps common (fun k ->
        let energy r = Ndp_sim.Energy.total r.Pipeline.energy in
        let def = energy (Common.default_of common k) in
        let saving r = Stats.improvement_pct def (energy r) in
        let ours = saving (Common.ours_of common k) in
        ( (ours, k),
          [
            name k;
            pct ours;
            pct (saving (ideal_network common k));
            pct (saving (ideal_data common k));
          ] ))
  in
  List.iter (fun (_, row) -> Table.add_row t row) cells;
  let acc = List.fold_left (fun acc (cell, _) -> cell :: acc) [] cells in
  Table.add_row t [ "geomean(ours)"; pct (Common.geomean_improvement acc) ];
  Table.print t

(* Graceful degradation under link failures. Runs bypass the memo cache
   (it does not key fault plans): each row re-simulates under a plan that
   kills [n] seed-chosen links. Slowdowns are relative to each scheme's
   own fault-free run, so the columns compare shapes of the degradation
   curve — the paper's partitioner should degrade smoothly where the
   default placement falls off a cliff, and repair should stay closest
   to 1.0. *)
let degradation ?(app = "ocean") common =
  Printf.printf "== Degradation: slowdown vs killed links (%s) ==\n" app;
  let k = List.find (fun k -> name k = app) (Common.apps common) in
  let config = Ndp_sim.Config.default in
  let mesh = Config.mesh config in
  let part =
    Pipeline.Partitioned { Pipeline.partitioned_defaults with Pipeline.window = Pipeline.Adaptive }
  in
  let time ?faults ?repair scheme =
    (Pipeline.run ~config ?faults ?repair scheme k).Pipeline.exec_time
  in
  let base_default = time Pipeline.Default in
  let base_part = time part in
  let t = Table.create ~header:[ "killed"; "default"; "partitioned"; "repaired" ] in
  List.iter
    (fun kills ->
      let slow base v = Table.cell_f (float_of_int v /. float_of_int base) in
      let row =
        if kills = 0 then
          [ "0"; slow base_default base_default; slow base_part base_part; slow base_part base_part ]
        else begin
          let faults =
            Ndp_fault.Plan.make ~mesh ~seed:config.Config.seed
              [ Ndp_fault.Plan.Kill_links kills ]
          in
          [
            string_of_int kills;
            slow base_default (time ~faults Pipeline.Default);
            slow base_part (time ~faults part);
            slow base_part (time ~faults ~repair:true part);
          ]
        end
      in
      Table.add_row t row)
    [ 0; 1; 2; 4; 8 ];
  Table.print t

let summary common =
  print_endline "== Summary: partitioned vs default placement ==";
  let t = Table.create ~header:[ "app"; "exec"; "movement"; "L1 (pp)"; "energy" ] in
  let cells =
    Common.map_apps common (fun k ->
        let def = Common.default_of common k and opt = Common.ours_of common k in
        let e = improvement (exec def) (exec opt) in
        let mov, _ = movement_reduction def opt in
        let l1 =
          100.0
          *. (SimStats.l1_hit_rate opt.Pipeline.stats -. SimStats.l1_hit_rate def.Pipeline.stats)
        in
        let energy =
          Stats.improvement_pct
            (Ndp_sim.Energy.total def.Pipeline.energy)
            (Ndp_sim.Energy.total opt.Pipeline.energy)
        in
        ((e, k), [ name k; pct e; pct mov; pct l1; pct energy ]))
  in
  List.iter (fun (_, row) -> Table.add_row t row) cells;
  let acc = List.fold_left (fun acc (cell, _) -> cell :: acc) [] cells in
  Table.add_row t [ "geomean(exec)"; pct (Common.geomean_improvement acc) ];
  Table.print t

let all common =
  fig13 common;
  fig14 common;
  fig15 common;
  fig16 common;
  fig17 common;
  fig18 common;
  fig19 common;
  link_heatmap common;
  attribution common;
  degradation common;
  fig20 common;
  fig21 common;
  fig22 common;
  fig23 common;
  fig24 common;
  summary common
