module Pipeline = Ndp_core.Pipeline
module Config = Ndp_sim.Config
module Pool = Ndp_prelude.Pool

type t = {
  cache : (string, Pipeline.result) Hashtbl.t;
  lock : Mutex.t;
  pool : Pool.t;
  mutable kernels : Ndp_core.Kernel.t list option;
}

let create ?jobs () =
  { cache = Hashtbl.create 64; lock = Mutex.create (); pool = Pool.create ?jobs (); kernels = None }

let pool t = t.pool

let apps t =
  Mutex.lock t.lock;
  let ks =
    match t.kernels with
    | Some ks -> ks
    | None ->
      let ks = Ndp_workloads.Suite.all () in
      t.kernels <- Some ks;
      ks
  in
  Mutex.unlock t.lock;
  ks

(* Canonical content keys live in [Ndp_serve.Key] (this cache is where
   they were born; the serve daemon promoted them). [Key.kernel] digests
   the IR content, so same-named kernels with different bodies cannot
   alias here either. *)
module Key = Ndp_serve.Key

let run t ?(config = Config.default) ?(tweaks = Pipeline.no_tweaks) ?(key_suffix = "") scheme
    kernel =
  let key =
    String.concat "#"
      [ Key.kernel kernel; Key.scheme scheme; Key.config config; Key.tweaks tweaks; key_suffix ]
  in
  Mutex.lock t.lock;
  match Hashtbl.find_opt t.cache key with
  | Some r ->
    Mutex.unlock t.lock;
    r
  | None ->
    Mutex.unlock t.lock;
    (* Simulate outside the lock; a concurrent cell computing the same key
       produces a bit-identical result (runs are deterministic), and the
       first writer wins so every reader sees one value. *)
    let r = Pipeline.Job.run ~pool:t.pool (Pipeline.Job.make ~config ~tweaks scheme kernel) in
    Mutex.lock t.lock;
    let r =
      match Hashtbl.find_opt t.cache key with
      | Some first -> first
      | None ->
        Hashtbl.replace t.cache key r;
        r
    in
    Mutex.unlock t.lock;
    r

let parallel_map t f xs = Pool.parallel_map t.pool f xs

let map_apps t f = parallel_map t f (apps t)

let default_of t kernel = run t Pipeline.Default kernel

let ours_of t kernel = run t (Pipeline.Partitioned Pipeline.partitioned_defaults) kernel

let improvement ~base ~opt =
  Ndp_prelude.Stats.improvement_pct (float_of_int base) (float_of_int opt)

let geomean_improvement rows =
  (* Geometric mean over percentages needs positive values; clamp small. *)
  Ndp_prelude.Stats.geomean (List.map (fun (v, _) -> max 0.1 v) rows)
