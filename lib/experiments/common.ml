module Pipeline = Ndp_core.Pipeline
module Config = Ndp_sim.Config
module Pool = Ndp_prelude.Pool

type t = {
  cache : (string, Pipeline.result) Hashtbl.t;
  lock : Mutex.t;
  pool : Pool.t;
  mutable kernels : Ndp_core.Kernel.t list option;
}

let create ?jobs () =
  { cache = Hashtbl.create 64; lock = Mutex.create (); pool = Pool.create ?jobs (); kernels = None }

let pool t = t.pool

let apps t =
  Mutex.lock t.lock;
  let ks =
    match t.kernels with
    | Some ks -> ks
    | None ->
      let ks = Ndp_workloads.Suite.all () in
      t.kernels <- Some ks;
      ks
  in
  Mutex.unlock t.lock;
  ks

(* Every [Config.t] field participates in the key: the original key kept
   only cluster/memory/page-policy, so configs differing in (for example)
   balance threshold, mesh dimensions, window bound or MCDRAM capacity
   aliased each other's memoized results. Floats are rendered in hex
   ([%h]) so distinct values can never round to the same key. *)
let config_key (c : Config.t) =
  String.concat ","
    [
      string_of_int c.Config.mesh_cols;
      string_of_int c.Config.mesh_rows;
      Ndp_noc.Cluster.letter c.Config.cluster;
      Config.memory_mode_letter c.Config.memory_mode;
      string_of_int c.Config.line_bytes;
      string_of_int c.Config.l1_size;
      string_of_int c.Config.l1_assoc;
      string_of_int c.Config.l2_bank_size;
      string_of_int c.Config.l2_assoc;
      string_of_int c.Config.mcdram_capacity;
      string_of_int c.Config.hop_cycles;
      string_of_int c.Config.link_service_cycles;
      string_of_int c.Config.flit_bytes;
      string_of_int c.Config.l1_hit_cycles;
      string_of_int c.Config.l2_hit_cycles;
      string_of_int c.Config.mcdram_cycles;
      string_of_int c.Config.ddr_cycles;
      string_of_int c.Config.op_cycles;
      string_of_int c.Config.sync_cycles;
      string_of_int c.Config.load_issue_cycles;
      string_of_int c.Config.outstanding_loads;
      string_of_bool c.Config.coherence;
      string_of_bool c.Config.prefetch_next_line;
      Printf.sprintf "%h" c.Config.mlp_overlap;
      Printf.sprintf "%h" c.Config.balance_threshold;
      string_of_int c.Config.max_window;
      (match c.Config.page_policy with
      | Ndp_mem.Page_alloc.Coloring -> "col"
      | Ndp_mem.Page_alloc.Scrambled -> "scr");
      string_of_int c.Config.predictor_capacity_blocks;
      string_of_int c.Config.seed;
    ]

let tweaks_key (tw : Pipeline.tweaks) =
  if tw = Pipeline.no_tweaks then ""
  else
    (* The override list is serialized pairwise: keying on its length alone
       let two different page->MC maps of equal size collide. *)
    Printf.sprintf "|b%h d%h mc[%s] c%h s%d" tw.Pipeline.l1_boost tw.Pipeline.distance_factor
      (String.concat ";"
         (List.map (fun (page, mc) -> Printf.sprintf "%d:%d" page mc) tw.Pipeline.mc_overrides))
      tw.Pipeline.cost_scale tw.Pipeline.extra_syncs

let scheme_key = function
  | Pipeline.Default -> "default"
  | Pipeline.Partitioned o ->
    Printf.sprintf "part(w=%s,r=%b,s=%b,l=%b,bt=%s,id=%b,insp=%b)"
      (match o.Pipeline.window with
      | Pipeline.Adaptive -> "a"
      | Pipeline.Analytic -> "an"
      | Pipeline.Fixed k -> string_of_int k)
      o.Pipeline.reuse_aware o.Pipeline.sync_minimize o.Pipeline.level_based
      (match o.Pipeline.balance_threshold with None -> "-" | Some f -> Printf.sprintf "%h" f)
      o.Pipeline.ideal_data o.Pipeline.use_inspector

let run t ?(config = Config.default) ?(tweaks = Pipeline.no_tweaks) ?(key_suffix = "") scheme
    kernel =
  let key =
    String.concat "#"
      [
        kernel.Ndp_core.Kernel.name; scheme_key scheme; config_key config; tweaks_key tweaks;
        key_suffix;
      ]
  in
  Mutex.lock t.lock;
  match Hashtbl.find_opt t.cache key with
  | Some r ->
    Mutex.unlock t.lock;
    r
  | None ->
    Mutex.unlock t.lock;
    (* Simulate outside the lock; a concurrent cell computing the same key
       produces a bit-identical result (runs are deterministic), and the
       first writer wins so every reader sees one value. *)
    let r = Pipeline.run ~config ~tweaks ~pool:t.pool scheme kernel in
    Mutex.lock t.lock;
    let r =
      match Hashtbl.find_opt t.cache key with
      | Some first -> first
      | None ->
        Hashtbl.replace t.cache key r;
        r
    in
    Mutex.unlock t.lock;
    r

let parallel_map t f xs = Pool.parallel_map t.pool f xs

let map_apps t f = parallel_map t f (apps t)

let default_of t kernel = run t Pipeline.Default kernel

let ours_of t kernel = run t (Pipeline.Partitioned Pipeline.partitioned_defaults) kernel

let improvement ~base ~opt =
  Ndp_prelude.Stats.improvement_pct (float_of_int base) (float_of_int opt)

let geomean_improvement rows =
  (* Geometric mean over percentages needs positive values; clamp small. *)
  Ndp_prelude.Stats.geomean (List.map (fun (v, _) -> max 0.1 v) rows)
