(** Disjoint-set forest with union by rank and path compression. *)

type t

val create : int -> t
(** [create n] makes [n] singleton sets labelled [0 .. n-1]. *)

val reset : t -> unit
(** Return every element to its own singleton set, as freshly created —
    lets hot callers reuse one instance instead of allocating per use. *)

val capacity : t -> int
(** The [n] the structure was created with. *)

val find : t -> int -> int
(** Representative of the set containing the element. *)

val union : t -> int -> int -> bool
(** Merge the two sets; [false] when already in the same set. *)

val same : t -> int -> int -> bool

val count : t -> int
(** Number of disjoint sets currently present. *)
