(* Irregular accesses and the inspector-executor mechanism (Section 4.5):
   a sparse gather kernel whose indirect references can only be located
   once the inspector has recorded the index-array contents. Compares the
   partitioner with and without the executor-phase knowledge.

     dune exec examples/irregular_inspector.exe *)

open Ndp_ir

let n = 16384
let trips = 400

let build () =
  let idx = Ndp_workloads.Gen.clustered ~seed:99 ~n:trips ~range:n ~spread:512 in
  let arrays =
    Array_decl.layout
      [ ("y", n, 8); ("aval", n, 8); ("x", n, 8); ("row", n, 8); ("idx", trips, 4) ]
  in
  let body =
    Parser.statements
      [ "y[i] = y[i] + aval[i] * x[idx[i]]"; "row[i] = row[i] + y[i] / aval[i]" ]
  in
  let nest = Loop.nest ~sweeps:3 "spmv" [ { Loop.var = "i"; lo = 0; hi = trips } ] body in
  let program = Loop.program "irregular" ~arrays ~nests:[ nest ] in
  Ndp_core.Kernel.make ~name:"irregular" ~description:"sparse gather" ~program
    ~index_arrays:[ ("idx", idx) ] ()

let () =
  let kernel = build () in
  let run label options =
    let r = Ndp_core.Pipeline.run (Ndp_core.Pipeline.Partitioned options) kernel in
    Printf.printf "%-22s exec %6d | movement %6d | analyzable refs %4.1f%%\n" label
      r.Ndp_core.Pipeline.exec_time (Ndp_sim.Stats.hops r.Ndp_core.Pipeline.stats)
      (100.0 *. r.Ndp_core.Pipeline.analyzable_fraction);
    r
  in
  let d = Ndp_core.Pipeline.run Ndp_core.Pipeline.Default kernel in
  Printf.printf "%-22s exec %6d | movement %6d\n" "default" d.Ndp_core.Pipeline.exec_time
    (Ndp_sim.Stats.hops d.Ndp_core.Pipeline.stats);
  let with_inspector = run "executor (inspector)" Ndp_core.Pipeline.partitioned_defaults in
  let without =
    run "no inspector"
      { Ndp_core.Pipeline.partitioned_defaults with Ndp_core.Pipeline.use_inspector = false }
  in
  Printf.printf
    "\nwith the inspector the compiler resolves x[idx[i]] and places the multiply near it;\n\
     without it those references pin to the consuming node (movement %d vs %d flit-hops).\n"
    (Ndp_sim.Stats.hops with_inspector.Ndp_core.Pipeline.stats)
    (Ndp_sim.Stats.hops without.Ndp_core.Pipeline.stats)
