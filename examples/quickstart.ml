(* Quickstart: write a loop nest in plain text, compile it with the
   data-movement-aware partitioner, and compare against the default
   iteration-granularity placement.

     dune exec examples/quickstart.exe *)

open Ndp_ir

let () =
  (* Five arrays of 16K doubles; the layout assigns page-aligned virtual
     base addresses, from which SNUCA home banks follow. *)
  let arrays =
    Array_decl.layout
      [ ("a", 16384, 8); ("b", 16384, 8); ("c", 16384, 8); ("d", 16384, 8); ("e", 16384, 8) ]
  in
  (* The statement of the paper's Figure 3, plus a second statement that
     reuses c(i) — the Figure 11 scenario. *)
  let body =
    Parser.statements [ "a[i] = b[i] + c[i] + d[i] + e[i]"; "e[i+1] = b[i] * (c[i] + d[i])" ]
  in
  let nest = Loop.nest ~sweeps:3 "body" [ { Loop.var = "i"; lo = 0; hi = 300 } ] body in
  let program = Loop.program "quickstart" ~arrays ~nests:[ nest ] in
  let kernel =
    Ndp_core.Kernel.make ~name:"quickstart" ~description:"Figure 3/11 example" ~program ()
  in
  let default = Ndp_core.Pipeline.run Ndp_core.Pipeline.Default kernel in
  let ours =
    Ndp_core.Pipeline.run
      (Ndp_core.Pipeline.Partitioned Ndp_core.Pipeline.partitioned_defaults)
      kernel
  in
  let line label (r : Ndp_core.Pipeline.result) =
    Printf.printf "%-12s exec %6d cycles | movement %6d flit-hops | L1 %4.1f%% | syncs %d\n" label
      r.Ndp_core.Pipeline.exec_time (Ndp_sim.Stats.hops r.Ndp_core.Pipeline.stats)
      (100.0 *. Ndp_sim.Stats.l1_hit_rate r.Ndp_core.Pipeline.stats)
      r.Ndp_core.Pipeline.sync_arcs
  in
  line "default" default;
  line "partitioned" ours;
  let pct base v = 100.0 *. float_of_int (base - v) /. float_of_int base in
  Printf.printf "\nmovement reduced %.1f%%, execution time reduced %.1f%%\n"
    (pct (Ndp_sim.Stats.hops default.Ndp_core.Pipeline.stats)
       (Ndp_sim.Stats.hops ours.Ndp_core.Pipeline.stats))
    (pct default.Ndp_core.Pipeline.exec_time ours.Ndp_core.Pipeline.exec_time)
